// Reusable spout/bolt implementations shared by the benchmark topologies.
// Each declares its simulated CPU cost (mega-cycles) and, where relevant,
// blocking I/O time, standing in for the real work the JVM components did.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "topo/component.h"
#include "workload/external_queue.h"
#include "workload/textgen.h"

namespace tstorm::workload {

/// Throughput Test spout: "repeatedly generates random strings of a fixed
/// size of 10K bytes as input tuples".
class RandomStringSpout final : public topo::Spout {
 public:
  RandomStringSpout(std::size_t payload_bytes, double cost_mc,
                    std::uint64_t seed);

  std::optional<topo::Tuple> next_tuple() override;
  [[nodiscard]] double cpu_cost_mega_cycles() const override {
    return cost_mc_;
  }

 private:
  std::string base_;  // reused payload buffer (counter stamped in place)
  double cost_mc_;
  std::uint64_t counter_ = 0;
};

/// Pulls one item per call from an external queue and emits the line
/// synthesized by `make_line` (the Redis-consuming reader/log spouts).
/// `make_line` returns a view into the generator's reused buffer; the
/// spout copies it into the (pooled) tuple before the next call.
class QueueSpout final : public topo::Spout {
 public:
  QueueSpout(std::shared_ptr<ExternalQueue> queue,
             std::function<std::string_view()> make_line, double cost_mc);

  std::optional<topo::Tuple> next_tuple() override;
  [[nodiscard]] double cpu_cost_mega_cycles() const override {
    return cost_mc_;
  }

 private:
  std::shared_ptr<ExternalQueue> queue_;
  std::function<std::string_view()> make_line_;
  double cost_mc_;
};

/// "Simply emits any tuples it receives ... without changing anything."
class IdentityBolt final : public topo::Bolt {
 public:
  explicit IdentityBolt(double cost_mc) : cost_mc_(cost_mc) {}

  void execute(const topo::Tuple& input, topo::BoltContext& ctx) override {
    ctx.emit(input);
  }
  [[nodiscard]] double cpu_cost_mega_cycles(
      const topo::Tuple& /*input*/) const override {
    return cost_mc_;
  }

 private:
  double cost_mc_;
};

/// "Holds a counter, and increments ... every time a tuple has been
/// received and processed." Terminal bolt (no emissions).
class CounterBolt final : public topo::Bolt {
 public:
  explicit CounterBolt(double cost_mc) : cost_mc_(cost_mc) {}

  void execute(const topo::Tuple& /*input*/,
               topo::BoltContext& /*ctx*/) override {
    ++count_;
  }
  [[nodiscard]] double cpu_cost_mega_cycles(
      const topo::Tuple& /*input*/) const override {
    return cost_mc_;
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }

 private:
  double cost_mc_;
  std::uint64_t count_ = 0;
};

/// SplitSentence: splits each line into words. Cost scales with line
/// length.
class SplitSentenceBolt final : public topo::Bolt {
 public:
  SplitSentenceBolt(double base_mc, double per_word_mc)
      : base_mc_(base_mc), per_word_mc_(per_word_mc) {}

  void execute(const topo::Tuple& input, topo::BoltContext& ctx) override;
  [[nodiscard]] double cpu_cost_mega_cycles(
      const topo::Tuple& input) const override;

 private:
  double base_mc_;
  double per_word_mc_;
};

/// Transparent string hashing so unordered_map lookups take
/// std::string_view without materializing a std::string per probe.
struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// WordCount: increments a per-word counter and emits (word, count).
/// Heterogeneous lookup: once the vocabulary has been seen, execute()
/// allocates nothing.
class WordCountBolt final : public topo::Bolt {
 public:
  using CountMap =
      std::unordered_map<std::string, std::int64_t, StringHash,
                         std::equal_to<>>;

  explicit WordCountBolt(double cost_mc) : cost_mc_(cost_mc) {}

  void execute(const topo::Tuple& input, topo::BoltContext& ctx) override;
  [[nodiscard]] double cpu_cost_mega_cycles(
      const topo::Tuple& /*input*/) const override {
    return cost_mc_;
  }
  [[nodiscard]] const CountMap& counts() const { return counts_; }

 private:
  double cost_mc_;
  CountMap counts_;
};

/// Terminal sink persisting results into a (simulated) MongoDB: CPU for
/// serialization plus blocking driver I/O.
class MongoBolt final : public topo::Bolt {
 public:
  MongoBolt(double cost_mc, double io_s) : cost_mc_(cost_mc), io_s_(io_s) {}

  void execute(const topo::Tuple& /*input*/,
               topo::BoltContext& /*ctx*/) override {
    ++writes_;
  }
  [[nodiscard]] double cpu_cost_mega_cycles(
      const topo::Tuple& /*input*/) const override {
    return cost_mc_;
  }
  [[nodiscard]] double io_time_seconds(
      const topo::Tuple& /*input*/) const override {
    return io_s_;
  }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }

 private:
  double cost_mc_;
  double io_s_;
  std::uint64_t writes_ = 0;
};

/// Log rules bolt: "performs rule-based analysis on the log stream and
/// emits a single value containing a log entry instance".
class LogRulesBolt final : public topo::Bolt {
 public:
  explicit LogRulesBolt(double cost_mc) : cost_mc_(cost_mc) {}

  void execute(const topo::Tuple& input, topo::BoltContext& ctx) override {
    ctx.emit(topo::Tuple{input.get_string(0)});
  }
  [[nodiscard]] double cpu_cost_mega_cycles(
      const topo::Tuple& /*input*/) const override {
    return cost_mc_;
  }

 private:
  double cost_mc_;
};

/// Indexer bolt: builds the (simulated) index document and forwards it.
class IndexerBolt final : public topo::Bolt {
 public:
  explicit IndexerBolt(double cost_mc) : cost_mc_(cost_mc) {}

  void execute(const topo::Tuple& input, topo::BoltContext& ctx) override {
    ctx.emit(topo::Tuple{input.get_string(0)});
  }
  [[nodiscard]] double cpu_cost_mega_cycles(
      const topo::Tuple& /*input*/) const override {
    return cost_mc_;
  }

 private:
  double cost_mc_;
};

/// Log counter bolt: aggregates per-entry counts and forwards (key, count).
class LogCountBolt final : public topo::Bolt {
 public:
  explicit LogCountBolt(double cost_mc) : cost_mc_(cost_mc) {}

  void execute(const topo::Tuple& input, topo::BoltContext& ctx) override {
    const auto& entry = input.get_string(0);
    const auto n = ++counts_[entry.size() % 97];  // cheap key extraction
    ctx.emit(topo::Tuple{static_cast<std::int64_t>(entry.size() % 97),
                         static_cast<std::int64_t>(n)});
  }
  [[nodiscard]] double cpu_cost_mega_cycles(
      const topo::Tuple& /*input*/) const override {
    return cost_mc_;
  }

 private:
  double cost_mc_;
  std::unordered_map<std::size_t, std::int64_t> counts_;
};

}  // namespace tstorm::workload
