#include "workload/loggen.h"

#include <charconv>

namespace tstorm::workload {
namespace {

const char* kMethods[] = {"GET", "GET", "GET", "GET", "POST", "HEAD"};
const char* kAgents[] = {
    "Mozilla/5.0 (Windows NT 6.1)", "Mozilla/5.0 (Macintosh)",
    "Googlebot/2.1", "curl/7.29.0"};
const int kStatuses[] = {200, 200, 200, 200, 200, 304, 404, 500};

}  // namespace

LogGenerator::LogGenerator() : LogGenerator(Options{}) {}

LogGenerator::LogGenerator(Options options)
    : options_(options), rng_(options.seed) {
  uris_.reserve(options_.distinct_uris);
  for (std::size_t i = 0; i < options_.distinct_uris; ++i) {
    uris_.push_back("/ecs/" + rng_.random_string(3) + "/" +
                    rng_.random_string(6) + ".aspx");
  }
  ips_.reserve(options_.distinct_ips);
  for (std::size_t i = 0; i < options_.distinct_ips; ++i) {
    ips_.push_back(std::to_string(rng_.uniform_int(1, 223)) + "." +
                   std::to_string(rng_.uniform_int(0, 255)) + "." +
                   std::to_string(rng_.uniform_int(0, 255)) + "." +
                   std::to_string(rng_.uniform_int(1, 254)));
  }
  // Longest possible line (fixed framing + bounded fields) fits well under
  // this; pre-sizing keeps next_json_line() allocation-free.
  line_.reserve(256);
}

LogRecord LogGenerator::next_record() {
  LogRecord r;
  r.client_ip = ips_[rng_.zipf(ips_.size(), options_.zipf_exponent)];
  r.method = kMethods[rng_.uniform_int(0, 5)];
  r.uri = uris_[rng_.zipf(uris_.size(), options_.zipf_exponent)];
  r.status = kStatuses[rng_.uniform_int(0, 7)];
  r.bytes = static_cast<std::uint64_t>(rng_.exponential(8.0 * 1024));
  r.user_agent = kAgents[rng_.uniform_int(0, 3)];
  return r;
}

std::string_view LogGenerator::next_json_line() {
  // Same RNG draw order as next_record(), but composed into the reused
  // buffer — no per-line string allocations.
  const std::string& ip =
      ips_[rng_.zipf(ips_.size(), options_.zipf_exponent)];
  const char* method = kMethods[rng_.uniform_int(0, 5)];
  const std::string& uri =
      uris_[rng_.zipf(uris_.size(), options_.zipf_exponent)];
  const int status = kStatuses[rng_.uniform_int(0, 7)];
  const auto bytes = static_cast<std::uint64_t>(rng_.exponential(8.0 * 1024));
  const char* agent = kAgents[rng_.uniform_int(0, 3)];

  char num[24];
  line_.clear();
  line_ += "{\"ip\":\"";
  line_ += ip;
  line_ += "\",\"method\":\"";
  line_ += method;
  line_ += "\",\"uri\":\"";
  line_ += uri;
  line_ += "\",\"status\":";
  line_.append(num, static_cast<std::size_t>(
                        std::to_chars(num, num + sizeof num, status).ptr -
                        num));
  line_ += ",\"bytes\":";
  line_.append(num, static_cast<std::size_t>(
                        std::to_chars(num, num + sizeof num, bytes).ptr -
                        num));
  line_ += ",\"agent\":\"";
  line_ += agent;
  line_ += "\"}";
  return line_;
}

}  // namespace tstorm::workload
