#include "workload/loggen.h"

namespace tstorm::workload {
namespace {

const char* kMethods[] = {"GET", "GET", "GET", "GET", "POST", "HEAD"};
const char* kAgents[] = {
    "Mozilla/5.0 (Windows NT 6.1)", "Mozilla/5.0 (Macintosh)",
    "Googlebot/2.1", "curl/7.29.0"};
const int kStatuses[] = {200, 200, 200, 200, 200, 304, 404, 500};

}  // namespace

LogGenerator::LogGenerator() : LogGenerator(Options{}) {}

LogGenerator::LogGenerator(Options options)
    : options_(options), rng_(options.seed) {
  uris_.reserve(options_.distinct_uris);
  for (std::size_t i = 0; i < options_.distinct_uris; ++i) {
    uris_.push_back("/ecs/" + rng_.random_string(3) + "/" +
                    rng_.random_string(6) + ".aspx");
  }
  ips_.reserve(options_.distinct_ips);
  for (std::size_t i = 0; i < options_.distinct_ips; ++i) {
    ips_.push_back(std::to_string(rng_.uniform_int(1, 223)) + "." +
                   std::to_string(rng_.uniform_int(0, 255)) + "." +
                   std::to_string(rng_.uniform_int(0, 255)) + "." +
                   std::to_string(rng_.uniform_int(1, 254)));
  }
}

LogRecord LogGenerator::next_record() {
  LogRecord r;
  r.client_ip = ips_[rng_.zipf(ips_.size(), options_.zipf_exponent)];
  r.method = kMethods[rng_.uniform_int(0, 5)];
  r.uri = uris_[rng_.zipf(uris_.size(), options_.zipf_exponent)];
  r.status = kStatuses[rng_.uniform_int(0, 7)];
  r.bytes = static_cast<std::uint64_t>(rng_.exponential(8.0 * 1024));
  r.user_agent = kAgents[rng_.uniform_int(0, 3)];
  return r;
}

std::string LogGenerator::next_json_line() {
  const LogRecord r = next_record();
  std::string out = "{\"ip\":\"" + r.client_ip + "\",\"method\":\"" +
                    r.method + "\",\"uri\":\"" + r.uri + "\",\"status\":" +
                    std::to_string(r.status) + ",\"bytes\":" +
                    std::to_string(r.bytes) + ",\"agent\":\"" + r.user_agent +
                    "\"}";
  return out;
}

}  // namespace tstorm::workload
