// ExternalQueue: the Redis queue the paper's Word Count and Log Stream
// topologies consume from, plus QueueProducer, the external process
// (file pusher / LogStash) that fills it at a configurable rate. The
// overload-handling experiments (Figs. 9 and 10) attach a second producer
// to model "two concurrent streams".
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>

#include "sim/simulation.h"

namespace tstorm::workload {

/// Item-count queue: producers credit it, spouts debit it. Payload content
/// is synthesized by the consumer's generator at pop time, so the queue
/// itself is O(1) memory regardless of backlog.
class ExternalQueue {
 public:
  explicit ExternalQueue(
      std::uint64_t capacity = std::numeric_limits<std::uint64_t>::max())
      : capacity_(capacity) {}

  /// Producer side. Returns false (and counts a drop) when full.
  bool push(std::uint64_t n = 1);

  /// Consumer side. Returns false when empty.
  bool try_pop();

  [[nodiscard]] std::uint64_t size() const { return size_; }
  [[nodiscard]] std::uint64_t total_pushed() const { return pushed_; }
  [[nodiscard]] std::uint64_t total_popped() const { return popped_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  std::uint64_t capacity_;
  std::uint64_t size_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t popped_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Pushes items into a queue at `rate` items/second (deterministic
/// spacing). Start/stop and rate changes take effect immediately, so
/// benches can turn a second stream on mid-run.
class QueueProducer {
 public:
  QueueProducer(sim::Simulation& sim, ExternalQueue& queue, double rate);
  ~QueueProducer() = default;

  void start(sim::Time first_delay = 0);
  void stop();
  void set_rate(double rate);
  [[nodiscard]] double rate() const { return rate_; }

 private:
  ExternalQueue& queue_;
  double rate_;
  std::unique_ptr<sim::PeriodicTask> task_;
};

}  // namespace tstorm::workload
