#include "workload/topologies.h"

namespace tstorm::workload {

topo::Topology make_throughput_test(const ThroughputTestOptions& options) {
  topo::TopologyBuilder b;
  auto seed = std::make_shared<std::uint64_t>(options.seed);
  b.set_spout("spout",
              [options, seed] {
                return std::make_unique<RandomStringSpout>(
                    options.payload_bytes, options.spout_cost_mc, (*seed)++);
              },
              options.spout_parallelism)
      .output_fields({"str"})
      .emit_interval(options.emit_interval)
      .max_pending(options.max_pending);
  b.set_bolt("identity",
             [options] {
               return std::make_unique<IdentityBolt>(options.identity_cost_mc);
             },
             options.identity_parallelism)
      .output_fields({"str"})
      .shuffle_grouping("spout");
  b.set_bolt("counter",
             [options] {
               return std::make_unique<CounterBolt>(options.counter_cost_mc);
             },
             options.counter_parallelism)
      .stateful()
      .shuffle_grouping("identity");
  return b.build(options.name, options.workers, options.ackers);
}

topo::Topology make_chain(const ChainOptions& options) {
  topo::TopologyBuilder b;
  auto seed = std::make_shared<std::uint64_t>(options.seed);
  b.set_spout("spout",
              [options, seed] {
                return std::make_unique<RandomStringSpout>(
                    options.payload_bytes, options.spout_cost_mc, (*seed)++);
              },
              options.spout_parallelism)
      .output_fields({"str"})
      .emit_interval(options.emit_interval)
      .max_pending(options.max_pending);
  std::string prev = "spout";
  for (int i = 0; i < options.bolts; ++i) {
    const std::string name = "bolt" + std::to_string(i + 1);
    auto decl = b.set_bolt(
        name,
        [options] {
          return std::make_unique<IdentityBolt>(options.bolt_cost_mc);
        },
        options.bolt_parallelism);
    decl.output_fields({"str"}).shuffle_grouping(prev);
    prev = name;
  }
  return b.build(options.name, options.workers, options.ackers);
}

WordCountWorkload make_word_count(const WordCountOptions& options) {
  auto queue = std::make_shared<ExternalQueue>();
  auto text = std::make_shared<TextGenerator>(options.text);

  topo::TopologyBuilder b;
  b.set_spout("reader",
              [options, queue, text] {
                return std::make_unique<QueueSpout>(
                    queue, [text] { return text->next_line(); },
                    options.reader_cost_mc);
              },
              options.spouts)
      .output_fields({"line"})
      .emit_interval(options.emit_interval)
      .max_pending(options.max_pending);
  b.set_bolt("split",
             [options] {
               return std::make_unique<SplitSentenceBolt>(
                   options.split_base_mc, options.split_per_word_mc);
             },
             options.splitters)
      .output_fields({"word"})
      .shuffle_grouping("reader");
  b.set_bolt("count",
             [options] {
               return std::make_unique<WordCountBolt>(options.count_cost_mc);
             },
             options.counters)
      .stateful()
      .output_fields({"word", "count"})
      .fields_grouping("split", "word");
  b.set_bolt("mongo",
             [options] {
               return std::make_unique<MongoBolt>(options.mongo_cost_mc,
                                                  options.mongo_io_s);
             },
             options.mongos)
      .shuffle_grouping("count");

  WordCountWorkload w{b.build(options.name, options.workers, options.ackers),
                      queue};
  return w;
}

LogStreamWorkload make_log_stream(const LogStreamOptions& options) {
  auto queue = std::make_shared<ExternalQueue>();
  auto logs = std::make_shared<LogGenerator>(options.log);

  topo::TopologyBuilder b;
  b.set_spout("log-spout",
              [options, queue, logs] {
                return std::make_unique<QueueSpout>(
                    queue, [logs] { return logs->next_json_line(); },
                    options.spout_cost_mc);
              },
              options.spouts)
      .output_fields({"log"})
      .emit_interval(options.emit_interval)
      .max_pending(options.max_pending);
  b.set_bolt("log-rules",
             [options] {
               return std::make_unique<LogRulesBolt>(options.rules_cost_mc);
             },
             options.rules)
      .output_fields({"entry"})
      .shuffle_grouping("log-spout");
  b.set_bolt("indexer",
             [options] {
               return std::make_unique<IndexerBolt>(options.indexer_cost_mc);
             },
             options.indexers)
      .stateful()
      .output_fields({"doc"})
      .shuffle_grouping("log-rules");
  b.set_bolt("counter",
             [options] {
               return std::make_unique<LogCountBolt>(options.counter_cost_mc);
             },
             options.counters)
      .stateful()
      .output_fields({"key", "count"})
      .fields_grouping("log-rules", "entry");
  b.set_bolt("mongo-index",
             [options] {
               return std::make_unique<MongoBolt>(options.mongo_cost_mc,
                                                  options.mongo_io_s);
             },
             options.mongo_each)
      .shuffle_grouping("indexer");
  b.set_bolt("mongo-count",
             [options] {
               return std::make_unique<MongoBolt>(options.mongo_cost_mc,
                                                  options.mongo_io_s);
             },
             options.mongo_each)
      .shuffle_grouping("counter");

  LogStreamWorkload w{b.build(options.name, options.workers, options.ackers),
                      queue};
  return w;
}

}  // namespace tstorm::workload
