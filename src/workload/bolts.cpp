#include "workload/bolts.h"

#include "sim/rng.h"

namespace tstorm::workload {

RandomStringSpout::RandomStringSpout(std::size_t payload_bytes,
                                     double cost_mc, std::uint64_t seed)
    : cost_mc_(cost_mc) {
  sim::Rng rng(seed);
  base_ = rng.random_string(payload_bytes);
}

std::optional<topo::Tuple> RandomStringSpout::next_tuple() {
  // A fresh "random" payload per emission without regenerating 10K chars:
  // stamp a counter into the shared base (the network model only sees the
  // byte count; the stamp keeps payloads distinct for fields grouping).
  std::string payload = base_;
  const auto stamp = std::to_string(counter_++);
  payload.replace(0, stamp.size(), stamp);
  return topo::Tuple{std::move(payload)};
}

QueueSpout::QueueSpout(std::shared_ptr<ExternalQueue> queue,
                       std::function<std::string()> make_line, double cost_mc)
    : queue_(std::move(queue)),
      make_line_(std::move(make_line)),
      cost_mc_(cost_mc) {}

std::optional<topo::Tuple> QueueSpout::next_tuple() {
  if (!queue_->try_pop()) return std::nullopt;
  return topo::Tuple{make_line_()};
}

void SplitSentenceBolt::execute(const topo::Tuple& input,
                                topo::BoltContext& ctx) {
  for (auto& word : split_words(input.get_string(0))) {
    ctx.emit(topo::Tuple{std::move(word)});
  }
}

double SplitSentenceBolt::cpu_cost_mega_cycles(
    const topo::Tuple& input) const {
  // Approximate word count from line length (avoids double parsing).
  const double words =
      static_cast<double>(input.get_string(0).size()) / 6.0;
  return base_mc_ + per_word_mc_ * words;
}

void WordCountBolt::execute(const topo::Tuple& input,
                            topo::BoltContext& ctx) {
  const auto& word = input.get_string(0);
  const auto count = ++counts_[word];
  ctx.emit(topo::Tuple{word, count});
}

}  // namespace tstorm::workload
