#include "workload/bolts.h"

#include <charconv>

#include "sim/rng.h"

namespace tstorm::workload {

RandomStringSpout::RandomStringSpout(std::size_t payload_bytes,
                                     double cost_mc, std::uint64_t seed)
    : cost_mc_(cost_mc) {
  sim::Rng rng(seed);
  base_ = rng.random_string(payload_bytes);
}

std::optional<topo::Tuple> RandomStringSpout::next_tuple() {
  // A fresh "random" payload per emission without regenerating 10K chars:
  // stamp a counter into the reused base buffer in place (the network
  // model only sees the byte count; the stamp keeps payloads distinct for
  // fields grouping). The tuple copies the buffer into pooled storage.
  char stamp[24];
  const auto* end = std::to_chars(stamp, stamp + sizeof stamp, counter_++).ptr;
  base_.replace(0, static_cast<std::size_t>(end - stamp), stamp,
                static_cast<std::size_t>(end - stamp));
  return topo::Tuple{std::string_view(base_)};
}

QueueSpout::QueueSpout(std::shared_ptr<ExternalQueue> queue,
                       std::function<std::string_view()> make_line,
                       double cost_mc)
    : queue_(std::move(queue)),
      make_line_(std::move(make_line)),
      cost_mc_(cost_mc) {}

std::optional<topo::Tuple> QueueSpout::next_tuple() {
  if (!queue_->try_pop()) return std::nullopt;
  return topo::Tuple{make_line_()};
}

void SplitSentenceBolt::execute(const topo::Tuple& input,
                                topo::BoltContext& ctx) {
  // In-place tokenization: each word is emitted as a view into the input
  // tuple's storage; short words land in Value's inline bytes.
  const std::string_view line = input.get_string(0);
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ') ++j;
    if (j > i) ctx.emit(topo::Tuple{line.substr(i, j - i)});
    i = j;
  }
}

double SplitSentenceBolt::cpu_cost_mega_cycles(
    const topo::Tuple& input) const {
  // Approximate word count from line length (avoids double parsing).
  const double words =
      static_cast<double>(input.get_string(0).size()) / 6.0;
  return base_mc_ + per_word_mc_ * words;
}

void WordCountBolt::execute(const topo::Tuple& input,
                            topo::BoltContext& ctx) {
  const std::string_view word = input.get_string(0);
  const std::int64_t count = state().increment(topo::Value(word));
  ctx.emit(topo::Tuple{word, count});
}

}  // namespace tstorm::workload
