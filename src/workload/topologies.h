// Factories for the paper's evaluation topologies:
//   - Throughput Test  (section V / Fig. 5; also the chain variant used in
//     the section III problem demonstrations, Figs. 2 and 3),
//   - Word Count, stream version  (Fig. 6, Fig. 9),
//   - Log Stream Processing       (Fig. 7 structure; Figs. 8 and 10).
// Options default to the paper's experimental parallelisms.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "topo/builder.h"
#include "workload/bolts.h"
#include "workload/external_queue.h"
#include "workload/loggen.h"
#include "workload/textgen.h"

namespace tstorm::workload {

/// ---------------------------------------------------- Throughput Test ---
/// spout -> identity -> counter (shuffle groupings), 10 KB random-string
/// tuples, 5 ms spout sleep. Paper test: 40 workers, 5 spout / 15 identity
/// / 15 counter / 10 acker executors.
struct ThroughputTestOptions {
  int spout_parallelism = 5;
  int identity_parallelism = 15;
  int counter_parallelism = 15;
  int ackers = 10;
  int workers = 40;
  double emit_interval = 0.005;  // the paper's 5 ms rate-control sleep
  std::size_t payload_bytes = 10 * 1024;
  double spout_cost_mc = 0.5;
  double identity_cost_mc = 0.15;
  double counter_cost_mc = 0.10;
  int max_pending = 400;
  std::uint64_t seed = 21;
  std::string name = "throughput-test";
};

topo::Topology make_throughput_test(const ThroughputTestOptions& options = {});

/// ------------------------------------------------------------- Chain ---
/// The section III chain: one spout, `bolts` identity bolts in a line,
/// one executor per component (Fig. 2), or `spout_parallelism` > 1 to
/// overload a node (Fig. 3: 5 spout executors, 1 bolt executor).
struct ChainOptions {
  int spout_parallelism = 1;
  int bolts = 4;
  int bolt_parallelism = 1;
  int ackers = 5;
  int workers = 1;
  double emit_interval = 0.005;
  std::size_t payload_bytes = 10 * 1024;
  double spout_cost_mc = 0.5;
  double bolt_cost_mc = 0.15;
  int max_pending = 400;
  std::uint64_t seed = 23;
  std::string name = "chain";
};

topo::Topology make_chain(const ChainOptions& options = {});

/// --------------------------------------------------------- Word Count ---
/// reader (Redis queue) -> split -> count (fields grouping on word) ->
/// mongo. Paper test: 20 workers, 2 spout / 5 split / 5 count / 5 mongo.
/// The returned queue is credited by QueueProducer(s) at the bench's line
/// rate; the overload experiment attaches a second producer.
struct WordCountOptions {
  int spouts = 2;
  int splitters = 5;
  int counters = 5;
  int mongos = 5;
  int ackers = 10;
  int workers = 20;
  double emit_interval = 0.002;  // reader poll
  int max_pending = 300;
  double reader_cost_mc = 0.3;
  double split_base_mc = 0.6;
  double split_per_word_mc = 0.12;
  double count_cost_mc = 1.0;
  double mongo_cost_mc = 0.5;
  double mongo_io_s = 0.00015;
  TextGenerator::Options text;
  std::string name = "word-count";
};

struct WordCountWorkload {
  topo::Topology topology;
  std::shared_ptr<ExternalQueue> queue;
};

WordCountWorkload make_word_count(const WordCountOptions& options = {});

/// ------------------------------------------------- Log Stream (Fig. 7) ---
/// log spout (Redis queue fed by LogStash) -> log rules -> {indexer,
/// counter} -> per-branch mongo sinks. Paper test: 20 workers, 5 spout /
/// 5 rules / 5 indexer / 5 counter / 2+2 mongo executors.
struct LogStreamOptions {
  int spouts = 5;
  int rules = 5;
  int indexers = 5;
  int counters = 5;
  int mongo_each = 2;
  int ackers = 10;
  int workers = 20;
  double emit_interval = 0.002;
  int max_pending = 300;
  // The paper notes LSP's bolts "do even more intensive work than those in
  // the Word Count topology"; these costs make the rules/indexer/counter
  // stages clearly CPU-bound.
  double spout_cost_mc = 0.4;
  double rules_cost_mc = 12.0;
  double indexer_cost_mc = 9.0;
  double counter_cost_mc = 6.0;
  double mongo_cost_mc = 4.5;
  double mongo_io_s = 0.0004;
  LogGenerator::Options log;
  std::string name = "log-stream";
};

struct LogStreamWorkload {
  topo::Topology topology;
  std::shared_ptr<ExternalQueue> queue;
};

LogStreamWorkload make_log_stream(const LogStreamOptions& options = {});

}  // namespace tstorm::workload
