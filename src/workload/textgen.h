// Synthetic text source standing in for the paper's Word Count input (the
// Gutenberg text of "Alice's Adventures in Wonderland" concatenated
// repeatedly). Words are drawn from a fixed vocabulary with a Zipf-like
// frequency distribution, matching the skew that makes fields grouping
// interesting (hot words hash to the same counter task).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sim/rng.h"

namespace tstorm::workload {

class TextGenerator {
 public:
  struct Options {
    std::size_t vocabulary = 3000;
    double zipf_exponent = 1.1;
    int min_words_per_line = 8;
    int max_words_per_line = 12;
    std::uint64_t seed = 7;
  };

  TextGenerator();
  explicit TextGenerator(Options options);

  /// One line of space-separated words. The view aliases an internal
  /// buffer reused across calls (pre-sized to the longest possible line,
  /// so steady-state generation never allocates); it is invalidated by
  /// the next next_line() call.
  std::string_view next_line();

  /// A single word draw (Zipf-distributed rank).
  const std::string& next_word();

  [[nodiscard]] const std::vector<std::string>& vocabulary() const {
    return vocab_;
  }
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_;
  sim::Rng rng_;
  std::vector<std::string> vocab_;
  std::string line_;  // reused line buffer
};

/// Splits a line into words (whitespace-separated). Allocates per word —
/// test/offline helper; the SplitSentence bolt tokenizes in place.
std::vector<std::string> split_words(std::string_view line);

}  // namespace tstorm::workload
