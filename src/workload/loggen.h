// Synthetic IIS-style web-server log lines, standing in for the Microsoft
// IIS logs (College of Engineering and Computer Science, Syracuse) used by
// the paper's Log Stream Processing experiments. LogStash-style JSON
// framing, Zipf-distributed URIs and client IPs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/rng.h"

namespace tstorm::workload {

struct LogRecord {
  std::string client_ip;
  std::string method;
  std::string uri;
  int status = 200;
  std::uint64_t bytes = 0;
  std::string user_agent;
};

class LogGenerator {
 public:
  struct Options {
    std::size_t distinct_uris = 500;
    std::size_t distinct_ips = 2000;
    double zipf_exponent = 1.3;
    std::uint64_t seed = 11;
  };

  LogGenerator();
  explicit LogGenerator(Options options);

  /// A structured record.
  LogRecord next_record();

  /// The record as the JSON value LogStash would push into Redis. The
  /// view aliases an internal buffer reused across calls (steady-state
  /// generation never allocates); invalidated by the next call.
  std::string_view next_json_line();

 private:
  Options options_;
  sim::Rng rng_;
  std::vector<std::string> uris_;
  std::vector<std::string> ips_;
  std::string line_;  // reused JSON buffer
};

}  // namespace tstorm::workload
