#include "workload/textgen.h"

#include <algorithm>
#include <unordered_set>

namespace tstorm::workload {

TextGenerator::TextGenerator() : TextGenerator(Options{}) {}

TextGenerator::TextGenerator(Options options)
    : options_(options), rng_(options.seed) {
  // Distinct pseudo-words, short ones first (like natural language, where
  // frequent words are short).
  std::unordered_set<std::string> seen;
  vocab_.reserve(options_.vocabulary);
  while (vocab_.size() < options_.vocabulary) {
    const auto len = static_cast<std::size_t>(rng_.uniform_int(
        2, 2 + static_cast<std::int64_t>(vocab_.size() * 8 /
                                         std::max<std::size_t>(
                                             1, options_.vocabulary))));
    auto w = rng_.random_string(len);
    if (seen.insert(w).second) vocab_.push_back(std::move(w));
  }
  // Pre-size the line buffer for the longest possible line so steady-state
  // generation never reallocates it.
  std::size_t longest = 0;
  for (const auto& w : vocab_) longest = std::max(longest, w.size());
  line_.reserve(static_cast<std::size_t>(options_.max_words_per_line) *
                (longest + 1));
}

const std::string& TextGenerator::next_word() {
  const auto rank = rng_.zipf(vocab_.size(), options_.zipf_exponent);
  return vocab_[rank];
}

std::string_view TextGenerator::next_line() {
  const auto n = rng_.uniform_int(options_.min_words_per_line,
                                  options_.max_words_per_line);
  line_.clear();
  for (std::int64_t i = 0; i < n; ++i) {
    if (i > 0) line_ += ' ';
    line_ += next_word();
  }
  return line_;
}

std::vector<std::string> split_words(std::string_view line) {
  std::vector<std::string> words;
  std::size_t start = 0;
  while (start < line.size()) {
    const auto end = line.find(' ', start);
    if (end == std::string_view::npos) {
      if (start < line.size()) words.emplace_back(line.substr(start));
      break;
    }
    if (end > start) words.emplace_back(line.substr(start, end - start));
    start = end + 1;
  }
  return words;
}

}  // namespace tstorm::workload
