#include "workload/randomgen.h"

#include <memory>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "workload/bolts.h"

namespace tstorm::workload {
namespace {

/// Forwards each input with a fixed cost; terminal when forward == false.
class RandomBolt final : public topo::Bolt {
 public:
  RandomBolt(double cost_mc, bool forward)
      : cost_mc_(cost_mc), forward_(forward) {}

  void execute(const topo::Tuple& input, topo::BoltContext& ctx) override {
    if (forward_) ctx.emit(input);
  }
  double cpu_cost_mega_cycles(const topo::Tuple&) const override {
    return cost_mc_;
  }

 private:
  double cost_mc_;
  bool forward_;
};

class SequenceSpout final : public topo::Spout {
 public:
  std::optional<topo::Tuple> next_tuple() override {
    return topo::Tuple{counter_++};
  }
  double cpu_cost_mega_cycles() const override { return 0.1; }

 private:
  std::int64_t counter_ = 0;
};

}  // namespace

topo::Topology make_random_topology(const RandomTopologyOptions& options) {
  sim::Rng rng(options.seed);
  topo::TopologyBuilder b;

  b.set_spout("spout", [] { return std::make_unique<SequenceSpout>(); },
              static_cast<int>(rng.uniform_int(1, 2)))
      .output_fields({"v"})
      .emit_interval(options.emit_interval)
      .max_pending(options.max_pending);

  const int n_bolts = static_cast<int>(
      rng.uniform_int(options.min_bolts, options.max_bolts));
  std::vector<std::string> sources{"spout"};

  for (int i = 0; i < n_bolts; ++i) {
    const std::string name = "bolt" + std::to_string(i);
    const double cost = rng.uniform(0.05, options.max_cost_mc);
    const bool forward = rng.bernoulli(options.forward_probability) ||
                         i + 1 < n_bolts;  // inner bolts keep data moving
    auto decl = b.set_bolt(
        name,
        [cost, forward] { return std::make_unique<RandomBolt>(cost, forward); },
        static_cast<int>(rng.uniform_int(1, options.max_parallelism)));
    decl.output_fields({"v"});

    auto subscribe = [&](const std::string& source) {
      switch (rng.uniform_int(0, 3)) {
        case 0:
          decl.shuffle_grouping(source);
          break;
        case 1:
          decl.fields_grouping(source, "v");
          break;
        case 2:
          decl.all_grouping(source);
          break;
        default:
          decl.global_grouping(source);
          break;
      }
    };
    // Primary input: the most recent source keeps the DAG connected.
    subscribe(sources.back());
    // Optional extra input from an earlier layer (no cycles: sources only
    // contains components declared before this bolt).
    if (sources.size() > 1 &&
        rng.bernoulli(options.extra_input_probability)) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(sources.size()) - 2));
      subscribe(sources[pick]);
    }
    sources.push_back(name);
  }

  return b.build(options.name, options.workers, options.ackers);
}

}  // namespace tstorm::workload
