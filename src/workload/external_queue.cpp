#include "workload/external_queue.h"

#include <cassert>

namespace tstorm::workload {

bool ExternalQueue::push(std::uint64_t n) {
  if (size_ + n > capacity_) {
    dropped_ += n;
    return false;
  }
  size_ += n;
  pushed_ += n;
  return true;
}

bool ExternalQueue::try_pop() {
  if (size_ == 0) return false;
  --size_;
  ++popped_;
  return true;
}

QueueProducer::QueueProducer(sim::Simulation& sim, ExternalQueue& queue,
                             double rate)
    : queue_(queue), rate_(rate) {
  assert(rate > 0);
  task_ = std::make_unique<sim::PeriodicTask>(sim, 1.0 / rate,
                                              [this] { queue_.push(); });
}

void QueueProducer::start(sim::Time first_delay) { task_->start(first_delay); }

void QueueProducer::stop() { task_->stop(); }

void QueueProducer::set_rate(double rate) {
  assert(rate > 0);
  rate_ = rate;
  task_->set_period(1.0 / rate);
}

}  // namespace tstorm::workload
